"""Sweep runner: execute scenarios serially or across worker processes.

Workloads are memoized per process: scenarios that share a (family,
params, seed) coordinate reuse the generated graph, and partitioned
instances are cached per (workload, partition scheme, backend), so a sweep
over many protocols on the same workload builds it once instead of once
per scenario.  Each scenario runs on its own stable seed (a hash of its
name unless pinned), so results are independent of sweep order, filtering,
sharding, and the serial/parallel execution mode.

Replication (``reps > 1``) runs each scenario under ``rep_seed``-derived
seeds — independent workload *and* protocol randomness per rep — and
aggregates the numeric metrics (mean / stddev / 95% CI) through
:func:`repro.analysis.stats.summarize`.

Wall time never touches the records at all: every run reports its
elapsed seconds to :data:`repro.obs.metrics.WALL_CLOCK` (the out-of-band
single source of truth the tables read), so canonical documents are a
pure function of the grid with nothing left to strip.

Observability: each layer of a run opens a span on the installed
observer — ``sweep`` → ``scenario`` → ``rep`` → ``protocol`` — and
``progress`` receives structured :class:`SweepEvent` objects (their
``str()`` is the human-readable line the CLI prints).  With the default
:class:`~repro.obs.NullObserver`, every span is a shared no-op context;
none of this runs inside protocol loops.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Any, Callable, Iterable, Sequence

from ..graphs import EdgePartition, Graph, PARTITIONERS
from ..obs import get_observer
from ..obs.metrics import WALL_CLOCK
from ..rand import Stream, derived_random
from .scenarios import FAMILIES, PROTOCOLS, Scenario
from .sharding import Journal

__all__ = [
    "SweepEvent",
    "aggregate_reps",
    "build_partition",
    "build_workload",
    "run_scenario",
    "run_scenario_rep",
    "run_scenario_reps",
    "sweep",
]


@lru_cache(maxsize=256)
def _cached_workload(family: str, params: tuple, seed: int) -> Graph:
    builder = FAMILIES[family]
    if getattr(builder, "stream_native", False):
        # Large-scale families draw straight from the workload stream
        # (geometric-skip edge streams); same "workload" label, so the
        # derivation hierarchy is unchanged for every other family.
        return builder(Stream.from_seed(seed).derive("workload"), **dict(params))
    rng = derived_random(seed, "workload")
    return builder(rng, **dict(params))


def build_workload(scenario: Scenario) -> Graph:
    """The scenario's graph (memoized per process on family/params/seed)."""
    return _cached_workload(scenario.family, scenario.params, scenario.effective_seed)


@lru_cache(maxsize=256)
def _cached_partition(
    family: str, params: tuple, seed: int, partition: str, backend: str
) -> EdgePartition:
    graph = _cached_workload(family, params, seed)
    # The partitioner draws from its own labelled stream so adding
    # partition schemes never perturbs workload generation.
    rng = derived_random(seed, "partition")
    part = PARTITIONERS[partition](graph, rng)
    return part.astype(backend)


def build_partition(scenario: Scenario) -> EdgePartition:
    """The scenario's partitioned instance, on the scenario's backend.

    Partitions are generated on the default backend and converted, so the
    same scenario coordinate describes the same edge split on every
    backend — the invariant the parity tests pin down.
    """
    return _cached_partition(
        scenario.family,
        scenario.params,
        scenario.effective_seed,
        scenario.partition,
        scenario.backend,
    )


def run_scenario(scenario: Scenario) -> dict[str, Any]:
    """Execute one scenario and return its flat JSON-ready result record.

    The record is canonical — a pure function of the scenario
    coordinate.  Elapsed wall time goes to :data:`WALL_CLOCK` (and, when
    an observer is installed, to the ``sweep.wall_time_s`` histogram),
    never into the record.
    """
    partition = build_partition(scenario)
    adapter = PROTOCOLS[scenario.protocol]
    obs = get_observer()
    start = time.perf_counter()
    with obs.span(
        "protocol",
        scenario=scenario.name,
        protocol=scenario.protocol,
        transport=scenario.transport,
    ):
        metrics = adapter.run(partition, scenario.effective_seed, scenario.transport)
    elapsed = time.perf_counter() - start
    WALL_CLOCK.record(scenario.name, elapsed)
    if obs.enabled:
        obs.observe("sweep.wall_time_s", elapsed)
    record: dict[str, Any] = {
        "scenario": scenario.name,
        "protocol": scenario.protocol,
        "family": scenario.family,
        "partition": scenario.partition,
        "backend": scenario.backend,
        "transport": scenario.transport,
        "seed": scenario.effective_seed,
        "n": partition.n,
        "m": partition.graph.m,
        "max_degree": partition.max_degree,
    }
    record.update(metrics)
    record["params"] = scenario.param_dict()
    return record


def run_scenario_rep(scenario: Scenario, rep: int) -> dict[str, Any]:
    """Execute one replication (0-based ``rep``) of a scenario.

    Rep 0 runs under the scenario's own seed, so an unreplicated sweep
    and replication 0 of a replicated one are the same record.
    """
    with get_observer().span("rep", scenario=scenario.name, rep=rep):
        return run_scenario(replace(scenario, seed=scenario.rep_seed(rep)))


def run_scenario_reps(
    scenario: Scenario,
    reps: int = 1,
    journal: "Journal | None" = None,
    on_rep: Callable[[int, dict[str, Any], float | None], None] | None = None,
) -> dict[str, Any]:
    """Execute ``reps`` independent replications and aggregate the metrics.

    ``reps == 1`` is exactly :func:`run_scenario`.  Otherwise each rep
    runs under ``scenario.rep_seed(r)`` — a fresh workload instance and
    protocol tape per rep — and the record carries every numeric metric
    as its across-rep mean, with full mean/std/CI summaries under
    ``"metrics"``.  ``valid`` is the conjunction over reps.

    With a ``journal``, each finished rep is journaled immediately and
    reps already journaled (a ``--resume`` replay of a crash
    mid-replication) are reused instead of rerun; the caller still
    journals the aggregate through the usual scenario-level append.
    ``on_rep(rep, record, elapsed)`` fires after each *freshly run* rep
    (not for replays) — the hook :func:`sweep` uses to surface per-rep
    progress events.
    """
    if reps < 1:
        raise ValueError(f"reps must be >= 1, got {reps}")
    with get_observer().span("scenario", scenario=scenario.name, reps=reps):
        if reps == 1:
            record = run_scenario(scenario)
            if on_rep is not None:
                on_rep(0, record, WALL_CLOCK.last(scenario.name))
            return record
        replayed = journal.partial.get(scenario.name, {}) if journal is not None else {}
        records = []
        for r in range(reps):
            record = replayed.get(r)
            if record is None:
                record = run_scenario_rep(scenario, r)
                elapsed = WALL_CLOCK.last(scenario.name)
                if journal is not None:
                    journal.append_rep(scenario.name, r, record, elapsed=elapsed)
                if on_rep is not None:
                    on_rep(r, record, elapsed)
            records.append(record)
        return aggregate_reps(scenario, records)


def aggregate_reps(
    scenario: Scenario, records: Sequence[dict[str, Any]]
) -> dict[str, Any]:
    """Reduce per-rep records (in rep order) to the scenario's aggregate.

    Pure function of the records, so aggregating freshly-run reps,
    journal-replayed reps, or pool-collected reps yields identical
    aggregates — the property rep-level resume and the dispatcher lean
    on.
    """
    reps = len(records)
    from ..analysis.stats import summarize  # deferred: numpy only when replicating

    base = records[0]
    aggregated: dict[str, Any] = {
        key: value
        for key, value in base.items()
        if not isinstance(value, (int, float)) or isinstance(value, bool)
    }
    metrics: dict[str, dict[str, float]] = {}
    for key, value in base.items():
        if key == "seed":
            continue
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        values = [r[key] for r in records]
        if all(v == values[0] for v in values):
            # Constant across reps (structural coordinates like n, and any
            # metric the protocol pins): keep the value — and its integer
            # type — rather than degrading it to a float mean with a
            # zero-width CI.
            aggregated[key] = value
            continue
        summary = summarize(values)
        metrics[key] = summary
        aggregated[key] = summary["mean"]
    aggregated["seed"] = scenario.effective_seed
    aggregated["reps"] = reps
    aggregated["rep_seeds"] = [scenario.rep_seed(r) for r in range(reps)]
    aggregated["valid"] = all(bool(r.get("valid")) for r in records)
    aggregated["metrics"] = metrics
    return aggregated


@dataclass(frozen=True)
class SweepEvent:
    """One structured progress notification from :func:`sweep`.

    ``kind`` is ``"rep"`` (one replication finished) or ``"scenario"``
    (a scenario's record — aggregate, under replication — is complete).
    ``elapsed`` is the unit's freshly measured wall seconds, ``None``
    when the unit was replayed from a journal rather than run.
    ``completed``/``total`` count scenarios (reps roll up into their
    scenario).  ``str(event)`` is the human-readable progress line, so
    any print-style consumer keeps working.
    """

    kind: str
    scenario: str
    reps: int
    ok: bool
    completed: int
    total: int
    rep: int | None = None
    elapsed: float | None = None

    def __str__(self) -> str:
        timing = f", {self.elapsed:.2f}s" if self.elapsed is not None else ""
        flag = "" if self.ok else " INVALID"
        if self.kind == "rep":
            return (
                f"{self.scenario} rep {int(self.rep or 0) + 1}/{self.reps}"
                f"{f' ({self.elapsed:.2f}s)' if self.elapsed is not None else ''}"
                f"{flag}"
            )
        return (
            f"done {self.scenario} ({self.completed}/{self.total}{timing}){flag}"
        )


def _rep_worker(
    task: tuple[Scenario, int]
) -> tuple[str, int, dict[str, Any], float | None]:
    """Picklable pool entry point for ``imap`` (one (scenario, rep) task).

    Returns the rep's elapsed seconds out-of-band so the coordinator can
    re-home the timing into its own :data:`WALL_CLOCK` — worker
    processes (and their wall-clock stores) die with the pool.
    """
    scenario, rep = task
    record = run_scenario_rep(scenario, rep)
    return scenario.name, rep, record, WALL_CLOCK.last(scenario.name)


def sweep(
    scenarios: Iterable[Scenario],
    jobs: int | None = None,
    progress: Callable[[SweepEvent], None] | None = None,
    reps: int = 1,
    journal: Journal | None = None,
) -> list[dict[str, Any]]:
    """Run scenarios, fanning out over a process pool when ``jobs > 1``.

    ``jobs`` defaults to the machine's CPU count.  The serial path is kept
    for single-core machines and debugging (no pickling, real tracebacks);
    it is also the path that produces full-depth traces, since pool
    workers cannot write into the coordinator's trace file.  Results come
    back in scenario order regardless of execution mode.

    ``progress`` receives :class:`SweepEvent` objects — a ``"rep"`` event
    per freshly finished replication and a ``"scenario"`` event per
    completed scenario.  Their ``str()`` is the printable progress line.

    The pool path streams (scenario, rep) completions through
    ``pool.imap_unordered`` (explicit chunksize), so ``progress`` fires
    and ``journal`` grows the moment each unit of work finishes — no
    head-of-line blocking behind a slow scenario, which is what makes
    mid-sweep crash recovery lose at most the rep in flight.  Scenarios
    already in ``journal.completed`` (a ``--resume`` replay) are not
    re-run, and under replication neither are journaled reps of
    partially-finished scenarios; replayed records fill the result list,
    which always comes back in scenario order.
    """
    scenario_list = list(scenarios)
    if reps < 1:
        raise ValueError(f"reps must be >= 1, got {reps}")
    if jobs is None:
        jobs = os.cpu_count() or 1
    obs = get_observer()
    # Fresh timings for the scenarios this sweep runs: a process that
    # sweeps twice reports each sweep's own wall time, not a running sum.
    WALL_CLOCK.discard(s.name for s in scenario_list)
    results_by_name: dict[str, dict[str, Any]] = (
        dict(journal.completed) if journal is not None else {}
    )
    pending = [s for s in scenario_list if s.name not in results_by_name]
    total = len(scenario_list)

    def emit(kind: str, scenario: Scenario, ok: bool,
             rep: int | None = None, elapsed: float | None = None) -> None:
        if progress is not None:
            progress(
                SweepEvent(
                    kind=kind,
                    scenario=scenario.name,
                    reps=reps,
                    ok=ok,
                    completed=len(results_by_name),
                    total=total,
                    rep=rep,
                    elapsed=elapsed,
                )
            )

    def record_completion(scenario: Scenario, record: dict[str, Any]) -> None:
        results_by_name[scenario.name] = record
        elapsed = WALL_CLOCK.total(scenario.name)
        if journal is not None:
            journal.append(scenario.name, record, elapsed=elapsed)
        emit("scenario", scenario, bool(record.get("valid")), elapsed=elapsed)

    with obs.span("sweep", scenarios=total, reps=reps, jobs=jobs):
        if jobs <= 1 or len(pending) <= 1:
            for scenario in pending:
                on_rep = (
                    (lambda r, rec, el, s=scenario:
                     emit("rep", s, bool(rec.get("valid")), rep=r, elapsed=el))
                    if reps > 1
                    else None
                )
                record_completion(
                    scenario,
                    run_scenario_reps(
                        scenario, reps, journal=journal, on_rep=on_rep
                    ),
                )
        else:
            # Fan out at rep granularity: each pool task is one (scenario,
            # rep) run, aggregated on the coordinator side once all of a
            # scenario's reps are in.  Aggregation order is pinned to rep
            # order, so pool sweeps match serial sweeps bit for bit.
            by_name = {scenario.name: scenario for scenario in pending}
            rep_records: dict[str, dict[int, dict[str, Any]]] = {}
            tasks: list[tuple[Scenario, int]] = []
            for scenario in pending:
                replayed = (
                    journal.partial.get(scenario.name, {})
                    if journal is not None and reps > 1
                    else {}
                )
                rep_records[scenario.name] = dict(replayed)
                tasks.extend(
                    (scenario, r) for r in range(reps) if r not in replayed
                )

            def complete_rep(
                name: str, rep: int, record: dict[str, Any],
                elapsed: float | None,
            ) -> None:
                scenario = by_name[name]
                if elapsed is not None:
                    # Re-home the worker's timing on the coordinator.
                    WALL_CLOCK.record(name, elapsed)
                if reps == 1:
                    record_completion(scenario, record)
                    return
                collected = rep_records[name]
                if rep not in collected:
                    collected[rep] = record
                    if journal is not None:
                        journal.append_rep(name, rep, record, elapsed=elapsed)
                    emit("rep", scenario, bool(record.get("valid")),
                         rep=rep, elapsed=elapsed)
                if len(collected) == reps:
                    record_completion(
                        scenario,
                        aggregate_reps(
                            scenario, [collected[r] for r in range(reps)]
                        ),
                    )

            # Scenarios whose reps were all journaled (a crash between the
            # last rep and the aggregate append) need no tasks — aggregate
            # them up front.
            for scenario in pending:
                if reps > 1 and len(rep_records[scenario.name]) == reps:
                    record_completion(
                        scenario,
                        aggregate_reps(
                            scenario,
                            [rep_records[scenario.name][r] for r in range(reps)],
                        ),
                    )
            if tasks:
                workers = min(jobs, len(tasks))
                chunksize = max(1, len(tasks) // (workers * 4))
                with multiprocessing.Pool(processes=workers) as pool:
                    for name, rep, record, elapsed in pool.imap_unordered(
                        _rep_worker, tasks, chunksize=chunksize
                    ):
                        complete_rep(name, rep, record, elapsed)
    return [results_by_name[s.name] for s in scenario_list]
