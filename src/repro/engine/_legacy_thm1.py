"""Frozen pre-pooling snapshot of the Theorem 1 lockstep path.

This module is a benchmark fixture, not production code.  It preserves the
comm layer and the protocol hot loops exactly as they were before the
pooled count wire landed:

* a fresh ``Msg`` dataclass instance per send (no ``__slots__``, no
  interning beyond the cached empty message);
* a delegate generator per ``ch.send`` exchange (no ``post``/``unwrap``);
* fresh per-key sub-channel objects and a fresh batch dict per parallel
  round (no buffer pooling, no batch reuse);
* one per-vertex sampler closure per Color-Sample instance;
* eagerly materialized guess schedules in Algorithm 3.

``bench --compare-transports`` times :func:`run_vertex_coloring_legacy` as
the "before" side of the Theorem 1 row and the regression guard compares
the pooled count path against it — the same role
:class:`repro.rand.LegacyTape` plays for ``bench --rand``.  Do not
optimize anything here; its entire value is staying slow in the old,
measured way while producing bit-for-bit the same transcript.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from contextlib import contextmanager
from typing import Any, Callable, Generator, Hashable, Iterator, Mapping, Tuple

from ..comm.bits import bitmap_cost, gamma_cost, uint_cost
from ..comm.codecs import Codec, edge_list_codec, encode_color_vector
from ..comm.ledger import Transcript
from ..comm.transport import ProtocolDesyncError
from ..core.d1lc import (
    _induced_on,
    _instance_codec,
    _pack_colors,
    _unpack_colors,
    _verdict_codec,
    sample_list_size,
    sparsity_threshold,
)
from ..core.random_color_trial import paper_iteration_count
from ..core.slack import SAMPLING_CONSTANT, guess_schedule, sampling_probability
from ..core.vertex_coloring import (
    PHASE_LEFTOVER,
    PHASE_TRIAL,
    VertexColoringResult,
    leftover_graph,
    leftover_lists,
)
from ..coloring.greedy import greedy_d1lc_coloring
from ..coloring.list_coloring import solve_list_coloring
from ..graphs.graph import Graph
from ..graphs.partition import EdgePartition
from ..rand import Stream

__all__ = ["run_vertex_coloring_legacy"]

_SENTINEL = object()


# ---------------------------------------------------------------------------
# legacy messages (plain dataclasses, no slots, no interning)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _LegacyMsg:
    nbits: int
    payload: Any = None

    def __post_init__(self) -> None:
        if self.nbits < 0:
            raise ValueError(f"message size must be non-negative, got {self.nbits}")


_EMPTY_MSG = _LegacyMsg(0, None)


@dataclass(frozen=True)
class _LegacyBatchMsg:
    parts: dict[Any, _LegacyMsg] = field(default_factory=dict)

    @property
    def nbits(self) -> int:
        return sum(msg.nbits for msg in self.parts.values())


# ---------------------------------------------------------------------------
# legacy channel + lockstep transport (fresh allocation everywhere)
# ---------------------------------------------------------------------------


def _start(gen: Generator) -> tuple[Any, Any]:
    try:
        return next(gen), _SENTINEL
    except StopIteration as stop:
        return None, stop.value


class _LegacyChannel:
    """The pre-pooling lockstep channel, verbatim."""

    __slots__ = ("_phases",)

    def __init__(self) -> None:
        self._phases: list[str] = []

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        self._phases.append(name)
        try:
            yield
        finally:
            self._phases.pop()

    def send(self, nbits: int, payload: Any = None, codec: Codec | None = None):
        reply = yield (
            _EMPTY_MSG if nbits == 0 and payload is None else _LegacyMsg(nbits, payload)
        )
        return reply.payload

    def recv(self):
        reply = yield _EMPTY_MSG
        return reply.payload

    def parallel(self, subprotocols: Mapping[Hashable, Any]):
        results: dict[Hashable, Any] = {}
        live: dict[Hashable, Generator] = {}
        outgoing: dict[Hashable, Any] = {}
        for key, factory in subprotocols.items():
            gen = factory(self._sub()) if callable(factory) else factory
            item, result = _start(gen)
            if item is None:
                results[key] = result
            else:
                live[key] = gen
                outgoing[key] = item
        part = self._part
        while live:
            incoming = yield self._batch(outgoing)
            outgoing = {}
            for key in list(live):
                try:
                    outgoing[key] = live[key].send(part(incoming, key))
                except StopIteration as stop:
                    results[key] = stop.value
                    del live[key]
        return results

    def _sub(self) -> "_LegacyChannel":
        sub = _LegacyChannel()
        sub._phases = self._phases
        return sub

    def _batch(self, parts: dict) -> _LegacyBatchMsg:
        return _LegacyBatchMsg(parts)

    def _part(self, incoming: Any, key: Hashable) -> _LegacyMsg:
        if not isinstance(incoming, _LegacyBatchMsg):
            raise TypeError(
                "parallel composition expects BatchMsg from peer, "
                f"got {type(incoming).__name__}"
            )
        return incoming.parts.get(key, _EMPTY_MSG)


def _legacy_run(
    alice: Callable[[_LegacyChannel], Generator],
    bob: Callable[[_LegacyChannel], Generator],
    transcript: Transcript,
) -> Tuple[Any, Any, Transcript]:
    """The pre-pooling lockstep round loop (record_round every round)."""
    a_ch = _LegacyChannel()
    b_ch = _LegacyChannel()
    a_gen = alice(a_ch)
    b_gen = bob(b_ch)

    record = transcript.record_round
    a_phases = a_ch._phases
    b_phases = b_ch._phases

    a_item, a_result = _start(a_gen)
    b_item, b_result = _start(b_gen)
    a_done = a_item is None
    b_done = b_item is None
    a_send = a_gen.send
    b_send = b_gen.send
    while True:
        if a_done or b_done:
            if a_done and b_done:
                return a_result, b_result, transcript
            lagging = "Bob" if a_done else "Alice"
            raise ProtocolDesyncError(
                f"{lagging} wants another round after round "
                f"{transcript.rounds}, but the peer already terminated"
            )
        if a_phases or b_phases:
            if a_phases != b_phases:
                raise ProtocolDesyncError(
                    f"phase schedules disagree in round {transcript.rounds}: "
                    f"Alice {a_phases!r} vs Bob {b_phases!r}"
                )
            record(a_item.nbits, b_item.nbits, tuple(a_phases))
        else:
            record(a_item.nbits, b_item.nbits)
        incoming_for_bob = a_item
        try:
            a_item = a_send(b_item)
        except StopIteration as stop:
            a_result = stop.value
            a_done = True
        try:
            b_item = b_send(incoming_for_bob)
        except StopIteration as stop:
            b_result = stop.value
            b_done = True


# ---------------------------------------------------------------------------
# legacy protocol hot loops (delegate-generator sends, per-key closures)
# ---------------------------------------------------------------------------


def _slack_find(ch, ground, own, own_count=None, peer_count=None):
    from bisect import bisect_left

    lo, hi = 0, len(ground)
    if isinstance(ground, range) and ground.start == 0 and ground.step == 1:
        own_pos = sorted(e for e in own if 0 <= e < hi)
    else:
        own_pos = sorted(i for i, e in enumerate(ground) if e in own)
    if own_count is None or peer_count is None:
        own_count = len(own_pos)
        peer_count = yield from ch.send(uint_cost(len(ground)), own_count)
    slack = (hi - lo) - own_count - peer_count
    if slack < 1:
        raise ValueError("no guaranteed free element: |I| - a - b < 1")

    while hi - lo > 1:
        mid = (lo + hi) // 2
        own_left = bisect_left(own_pos, mid) - bisect_left(own_pos, lo)
        peer_left = yield from ch.send((mid - lo).bit_length(), own_left)
        left_slack = (mid - lo) - own_left - peer_left
        if left_slack >= 1:
            hi = mid
            slack = left_slack
        else:
            lo = mid
            slack = slack - left_slack
    return ground[lo]


def _randomized_slack(ch, m, own, pub, constant=SAMPLING_CONSTANT):
    if m < 1:
        raise ValueError(f"ground size must be positive, got {m}")
    own_in_range = -1
    for k_tilde in guess_schedule(m):
        sample = pub.sample_indices(m, sampling_probability(m, k_tilde, constant))
        if sample.__class__ is range:
            if own_in_range < 0:
                own_in_range = sum(1 for i in own if 0 <= i < m)
            own_count = own_in_range
        else:
            own_count = sum(1 for i in sample if i in own)
        peer_count = yield from ch.send(uint_cost(len(sample)), own_count)
        if own_count + peer_count < len(sample):
            result = yield from _slack_find(
                ch, sample, own, own_count=own_count, peer_count=peer_count
            )
            return result
    raise RuntimeError("Algorithm 3 exhausted its guesses")


def _color_sample(ch, num_colors, own_used, pub):
    if num_colors < 1:
        raise ValueError(f"palette must be non-empty, got {num_colors}")
    for c in own_used:
        if not 1 <= c <= num_colors:
            bad = sorted(x for x in own_used if not 1 <= x <= num_colors)
            raise ValueError(
                f"used colors outside palette [1..{num_colors}]: {bad[:3]}"
            )
    perm = pub.permutation(num_colors)
    own_positions = {perm.index_of(c - 1) for c in own_used}
    position = yield from _randomized_slack(ch, num_colors, own_positions, pub)
    return perm[position] + 1


def _random_color_trial(ch, own_graph, num_colors, pub, max_iterations):
    n = own_graph.n
    iterations = paper_iteration_count(n) if max_iterations is None else max_iterations
    colors: dict[int, int] = {}
    active = list(range(n))

    for iteration in range(iterations):
        if not active:
            break
        flips = pub.coins(len(active), 0.5)
        awake = [v for v, f in zip(active, flips) if f]
        if not awake:
            continue

        iter_base = pub.derive("rct", iteration)
        samplers = {}
        for v in awake:
            own_used = own_graph.neighbor_colors(v, colors)
            samplers[v] = (
                lambda sub, used=own_used, tape=iter_base.derive(v):
                _color_sample(sub, num_colors, used, tape)
            )
        chosen: dict[int, int] = yield from ch.parallel(samplers)

        awake_set = set(awake)
        awake_packed = own_graph.pack_vertices(awake)
        own_ok = tuple(
            all(
                chosen[u] != chosen[v]
                for u in own_graph.neighbors_in(v, awake_packed)
            )
            for v in awake
        )
        peer_ok = yield from ch.send(bitmap_cost(len(awake)), own_ok)

        still_active = []
        for idx, v in enumerate(awake):
            if own_ok[idx] and peer_ok[idx]:
                colors[v] = chosen[v]
            else:
                still_active.append(v)
        awake_survivors = set(still_active)
        active = [v for v in active if v not in awake_set or v in awake_survivors]

    return colors, active


def _d1lc(ch, role, own_graph, own_lists, active, num_colors, pub, rng):
    active = sorted(active)
    n_active = len(active)
    if n_active == 0:
        return {}
    m = num_colors
    palette = set(range(1, m + 1))

    ell = sample_list_size(n_active)
    samplers = {}
    for v in active:
        own_complement = palette - set(own_lists[v])
        v_base = pub.derive("d1lc", v)
        for j in range(ell):
            samplers[(v, j)] = (
                lambda sub, used=own_complement, tape=v_base.derive(j):
                _color_sample(sub, m, used, tape)
            )
    draws = yield from ch.parallel(samplers)
    sampled: dict[int, set[int]] = {v: set() for v in active}
    for (v, _j), color in draws.items():
        sampled[v].add(color)

    surviving = [
        (u, v) for u, v in own_graph.edges() if sampled[u] & sampled[v]
    ]

    n = own_graph.n
    edge_width = 2 * uint_cost(max(n - 1, 1))

    if role == "bob":
        cost = gamma_cost(len(surviving) + 1) + len(surviving) * edge_width
        yield from ch.send(cost, tuple(surviving), codec=edge_list_codec(n))
        tag, packed = yield from ch.recv()
        if tag == "ok":
            return _unpack_colors(packed, active)
        edges = tuple(own_graph.edges())
        lists = tuple((v, tuple(sorted(own_lists[v]))) for v in active)
        cost = (
            gamma_cost(len(edges) + 1)
            + len(edges) * edge_width
            + n_active * m
        )
        yield from ch.send(cost, (edges, lists), codec=_instance_codec(n, m))
        final = yield from ch.recv()
        return _unpack_colors(final, active)

    peer_edges = yield from ch.recv()
    sparse = type(own_graph)(n, list(surviving) + list(peer_edges))
    colors: dict[int, int] | None = None
    if sparse.m <= sparsity_threshold(n_active):
        induced_sparse = _induced_on(sparse, active)
        induced_lists = {idx: sampled[v] for idx, v in enumerate(active)}
        local = solve_list_coloring(induced_sparse, induced_lists, rng)
        if local is not None:
            colors = {active[idx]: c for idx, c in local.items()}
    if colors is not None:
        yield from ch.send(
            1 + n_active * uint_cost(m),
            ("ok", _pack_colors(colors, active)),
            codec=_verdict_codec(m),
        )
        return colors

    yield from ch.send(1, ("fallback", None), codec=_verdict_codec(m))
    bob_edges, bob_lists_packed = yield from ch.recv()
    full = type(own_graph)(n, list(own_graph.edges()) + list(bob_edges))
    merged_lists = {v: set(own_lists[v]) & set(blist) for v, blist in bob_lists_packed}
    induced = _induced_on(full, active)
    local_lists = {idx: merged_lists[v] for idx, v in enumerate(active)}
    local_colors = greedy_d1lc_coloring(induced, local_lists)
    colors = {active[idx]: c for idx, c in local_colors.items()}
    yield from ch.send(
        n_active * uint_cost(m),
        _pack_colors(colors, active),
        codec=lambda p: encode_color_vector(p, m),
    )
    return colors


def _vertex_coloring(ch, role, own_graph, num_colors, pub, rng, trial_cap):
    with ch.phase(PHASE_TRIAL):
        colors, active = yield from _random_color_trial(
            ch, own_graph, num_colors, pub, trial_cap
        )
    leftover_size = len(active)
    if active:
        pub_leftover = pub.derive("d1lc-phase")
        with ch.phase(PHASE_LEFTOVER):
            final = yield from _d1lc(
                ch,
                role,
                leftover_graph(own_graph, active),
                leftover_lists(own_graph, colors, active, num_colors),
                active,
                num_colors,
                pub_leftover,
                rng,
            )
        colors.update(final)
    return colors, leftover_size


def run_vertex_coloring_legacy(
    partition: EdgePartition,
    seed: int = 0,
    max_trial_iterations: int | None = None,
    rand: Stream | None = None,
) -> VertexColoringResult:
    """Theorem 1 end-to-end on the frozen pre-pooling lockstep machinery.

    Same seeds, same draws, same schedule as
    :func:`repro.core.run_vertex_coloring` — the result (coloring and
    transcript aggregates) must be bit-for-bit identical; only the comm
    simulation machinery differs.  ``rand``/``seed`` mirror the modern
    driver's stream-native signature.
    """
    n = partition.n
    delta = partition.max_degree
    num_colors = delta + 1
    transcript = Transcript()

    if delta == 0:
        colors = {v: 1 for v in range(n)}
        return VertexColoringResult(colors, transcript, num_colors, 0, 0)

    cap = (
        paper_iteration_count(n)
        if max_trial_iterations is None
        else max_trial_iterations
    )

    root = rand if rand is not None else Stream.from_seed(seed)
    pub_alice = root.derive("public")
    pub_bob = root.derive("public")
    rng_alice = root.derive_random("alice-private")
    rng_bob = root.derive_random("bob-private")

    (a_colors, a_leftover), (b_colors, b_leftover), _ = _legacy_run(
        lambda ch: _vertex_coloring(
            ch, "alice", partition.alice_graph, num_colors, pub_alice, rng_alice, cap
        ),
        lambda ch: _vertex_coloring(
            ch, "bob", partition.bob_graph, num_colors, pub_bob, rng_bob, cap
        ),
        transcript,
    )
    if a_colors != b_colors or a_leftover != b_leftover:
        raise AssertionError("parties disagree on the coloring")

    return VertexColoringResult(a_colors, transcript, num_colors, a_leftover, cap)
