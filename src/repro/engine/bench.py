"""Backend benchmark: set-based vs bitset graphs on one shared workload.

Times the graph kernels the protocol hot paths lean on (copy for the
Algorithm 2 surgery, induced subgraphs for the D1LC leftover instance,
neighborhood scans for Random-Color-Trial confirmations) and the three
end-to-end protocol drivers, on the standard ``medium_partition`` workload
of the benchmark suite (random d-regular, n=512, d=8, seed=42) unless
told otherwise.  Both backends run the *identical* instance — the bitset
partition is a converted copy — so the comparison is purely about the
adjacency representation.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from ..core.edge_coloring import run_edge_coloring, run_zero_comm_edge_coloring
from ..core.vertex_coloring import run_vertex_coloring
from ..graphs import EdgePartition
from .runner import build_partition
from .scenarios import Scenario

__all__ = ["backend_comparison", "medium_workload"]


def medium_workload(n: int = 512, d: int = 8, seed: int = 42) -> EdgePartition:
    """The benchmark suite's shared workload (randomly partitioned d-regular).

    Routed through the engine's scenario cache, so ``python -m repro bench``
    and the ``medium_partition`` pytest fixture time the identical instance.
    """
    scenario = Scenario(
        family="regular",
        params=(("d", d), ("n", n)),
        partition="random",
        protocol="vertex",
        seed=seed,
    )
    return build_partition(scenario)


def _time(fn: Callable[[], Any], repeat: int) -> float:
    """Best-of-``repeat`` wall time in seconds (min damps scheduler noise)."""
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def backend_comparison(
    n: int = 512, d: int = 8, seed: int = 42, repeat: int = 5
) -> list[dict[str, Any]]:
    """Rows of ``{kernel, set_s, bitset_s, speedup}`` for the table renderers."""
    part = medium_workload(n, d, seed)
    bpart = part.astype("bitset")
    g, b = part.graph, bpart.graph
    half = list(range(0, g.n, 2))
    packed_g = g.pack_vertices(half)
    packed_b = b.pack_vertices(half)

    def scan(graph, packed):
        def run():
            for v in range(graph.n):
                graph.neighbors_in(v, packed)
        return run

    kernels: list[tuple[str, Callable[[], Any], Callable[[], Any], int]] = [
        ("graph.copy", g.copy, b.copy, 20 * repeat),
        (
            "induced_subgraph(n/2)",
            lambda: g.induced_subgraph(half),
            lambda: b.induced_subgraph(half),
            4 * repeat,
        ),
        ("neighbors_in sweep", scan(g, packed_g), scan(b, packed_b), 4 * repeat),
        (
            "is_independent_set(n/2)",
            lambda: g.is_independent_set(half),
            lambda: b.is_independent_set(half),
            4 * repeat,
        ),
        (
            "protocol: vertex (thm 1)",
            lambda: run_vertex_coloring(part, seed=seed),
            lambda: run_vertex_coloring(bpart, seed=seed),
            repeat,
        ),
        (
            "protocol: edge (thm 2)",
            lambda: run_edge_coloring(part),
            lambda: run_edge_coloring(bpart),
            repeat,
        ),
        (
            "protocol: zero-comm (thm 3)",
            lambda: run_zero_comm_edge_coloring(part),
            lambda: run_zero_comm_edge_coloring(bpart),
            repeat,
        ),
    ]

    rows = []
    for name, set_fn, bitset_fn, reps in kernels:
        set_s = _time(set_fn, reps)
        bitset_s = _time(bitset_fn, reps)
        rows.append(
            {
                "kernel": name,
                "set_s": set_s,
                "bitset_s": bitset_s,
                "speedup": set_s / bitset_s if bitset_s > 0 else float("inf"),
            }
        )
    return rows
