"""Backend and transport benchmarks on one shared workload.

``backend_comparison`` times the graph kernels the protocol hot paths
lean on (copy for the Algorithm 2 surgery, induced subgraphs for the D1LC
leftover instance, neighborhood scans for Random-Color-Trial
confirmations) and the three end-to-end protocol drivers, on the standard
``medium_partition`` workload of the benchmark suite (random d-regular,
n=512, d=8, seed=42) unless told otherwise.  Both backends run the
*identical* instance — the bitset partition is a converted copy — so the
comparison is purely about the adjacency representation.

``transport_comparison`` times the end-to-end protocols across the three
comm transports (lockstep / count / strict) on the E4 edge-scaling
workload (random d-regular, n=512, d=10) and checks that every transport
produced identical transcript totals — the count-only transport's speedup
is pure comm-simulation overhead removed, not changed behavior.

``rand_comparison`` times the randomness substrates — the legacy
``random.Random`` tape versus the ``repro.rand`` counter-based streams —
on micro draws and on the end-to-end Theorem 1 vertex path, and
``profile_hotspots`` emits cProfile's top functions for that path as
JSON-ready rows so hot-path claims are reproducible from the CLI.
"""

from __future__ import annotations

import cProfile
import pstats
import random
import time
from typing import Any, Callable

from ..comm.transport import TRANSPORTS, resolve_transport
from ..core.edge_coloring import run_edge_coloring, run_zero_comm_edge_coloring
from ..core.random_color_trial import paper_iteration_count
from ..core.vertex_coloring import run_vertex_coloring, vertex_coloring_proto
from ..graphs import (
    GRAPH_BACKENDS,
    EdgePartition,
    configuration_model_edge_stream,
    power_law_degree_sequence,
)
from ..graphs.validation import is_proper_vertex_coloring
from ..rand import LegacyTape, Stream
from .runner import build_partition
from .scenarios import Scenario

__all__ = [
    "backend_comparison",
    "graphs_comparison",
    "kernel_comparison",
    "medium_workload",
    "profile_hotspots",
    "rand_comparison",
    "transport_comparison",
]


def medium_workload(n: int = 512, d: int = 8, seed: int = 42) -> EdgePartition:
    """The benchmark suite's shared workload (randomly partitioned d-regular).

    Routed through the engine's scenario cache, so ``python -m repro bench``
    and the ``medium_partition`` pytest fixture time the identical instance.
    """
    scenario = Scenario(
        family="regular",
        params=(("d", d), ("n", n)),
        partition="random",
        protocol="vertex",
        seed=seed,
    )
    return build_partition(scenario)


def _time(fn: Callable[[], Any], repeat: int) -> float:
    """Best-of-``repeat`` wall time in seconds (min damps scheduler noise)."""
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def backend_comparison(
    n: int = 512,
    d: int = 8,
    seed: int = 42,
    repeat: int = 5,
    transport: str = "lockstep",
) -> list[dict[str, Any]]:
    """Rows of ``{kernel, set_s, bitset_s, speedup}`` for the table renderers.

    ``transport`` picks the comm simulation used by the end-to-end
    protocol rows (the kernel rows never communicate).
    """
    part = medium_workload(n, d, seed)
    bpart = part.astype("bitset")
    g, b = part.graph, bpart.graph
    half = list(range(0, g.n, 2))
    packed_g = g.pack_vertices(half)
    packed_b = b.pack_vertices(half)

    def scan(graph, packed):
        def run():
            for v in range(graph.n):
                graph.neighbors_in(v, packed)
        return run

    kernels: list[tuple[str, Callable[[], Any], Callable[[], Any], int]] = [
        ("graph.copy", g.copy, b.copy, 20 * repeat),
        (
            "induced_subgraph(n/2)",
            lambda: g.induced_subgraph(half),
            lambda: b.induced_subgraph(half),
            4 * repeat,
        ),
        ("neighbors_in sweep", scan(g, packed_g), scan(b, packed_b), 4 * repeat),
        (
            "is_independent_set(n/2)",
            lambda: g.is_independent_set(half),
            lambda: b.is_independent_set(half),
            4 * repeat,
        ),
        (
            "protocol: vertex (thm 1)",
            lambda: run_vertex_coloring(part, seed=seed, transport=transport),
            lambda: run_vertex_coloring(bpart, seed=seed, transport=transport),
            repeat,
        ),
        (
            "protocol: edge (thm 2)",
            lambda: run_edge_coloring(part, transport=transport),
            lambda: run_edge_coloring(bpart, transport=transport),
            repeat,
        ),
        (
            "protocol: zero-comm (thm 3)",
            lambda: run_zero_comm_edge_coloring(part, transport=transport),
            lambda: run_zero_comm_edge_coloring(bpart, transport=transport),
            repeat,
        ),
    ]

    rows = []
    for name, set_fn, bitset_fn, reps in kernels:
        set_s = _time(set_fn, reps)
        bitset_s = _time(bitset_fn, reps)
        rows.append(
            {
                "kernel": name,
                "set_s": set_s,
                "bitset_s": bitset_s,
                "speedup": set_s / bitset_s if bitset_s > 0 else float("inf"),
            }
        )
    return rows


def graphs_comparison(
    n: int = 100_000,
    degree: int = 24,
    seed: int = 42,
    repeat: int = 3,
) -> list[dict[str, Any]]:
    """One row per graph backend: build time, probe throughput, memory.

    All backends ingest the *identical* power-law edge list (the social
    family's recipe: stream-drawn degree sequence + configuration-model
    pairing), so every difference is pure representation.  Per backend:

    * ``build_s`` — best-of construction time from the shared edge list.
    * ``probe_s`` — one confirmation-style sweep: pack half the vertex
      set, then ``has_neighbor_in`` for every vertex (the Random-Color-
      Trial hot probe).  This is where bitset's O(n/64) words-per-probe
      masks collapse against CSR's O(deg) row scans on sparse graphs.
    * ``mem_mb`` / ``peak_mb`` — tracemalloc-retained structure size and
      build-time allocation peak (bitset adjacency is O(n²) bits, so at
      n = 10⁵ this is the backend-picking number).

    The ``csr`` row adds ``probe_speedup_vs_bitset`` and
    ``mem_ratio_vs_bitset`` — the quantities the CI guard
    (``bench --graphs --min-csr-speedup``) floors.
    """
    import tracemalloc

    stream = Stream.from_seed(seed, "bench-graphs")
    degrees = power_law_degree_sequence(n, 2.3, degree, stream.derive("degrees"))
    edges = list(
        configuration_model_edge_stream(degrees, stream.derive("pairing"))
    )

    def probe(graph, packed):
        has_neighbor_in = graph.has_neighbor_in
        for v in range(graph.n):
            has_neighbor_in(v, packed)

    rows = []
    by_backend: dict[str, dict[str, Any]] = {}
    half = range(0, n, 2)
    for backend, cls in GRAPH_BACKENDS.items():
        build_s = _time(lambda: cls(n, edges), min(repeat, 2))
        tracemalloc.start()
        before, _ = tracemalloc.get_traced_memory()
        graph = cls(n, edges)
        current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        packed = graph.pack_vertices(half)
        probe_s = _time(lambda: probe(graph, packed), repeat)
        row = {
            "backend": backend,
            "n": n,
            "m": graph.m,
            "seed": seed,
            "build_s": build_s,
            "probe_s": probe_s,
            "mem_mb": round((current - before) / 1e6, 3),
            "peak_mb": round((peak - before) / 1e6, 3),
        }
        by_backend[backend] = row
        rows.append(row)
    csr, bitset = by_backend.get("csr"), by_backend.get("bitset")
    if csr and bitset:
        csr["probe_speedup_vs_bitset"] = (
            bitset["probe_s"] / csr["probe_s"] if csr["probe_s"] > 0 else float("inf")
        )
        csr["mem_ratio_vs_bitset"] = (
            bitset["mem_mb"] / csr["mem_mb"] if csr["mem_mb"] > 0 else float("inf")
        )
    return rows


def _run_vertex_on_tape(part: EdgePartition, seed: int, tape_cls) -> dict[int, int]:
    """Theorem 1 end-to-end on an explicit randomness substrate.

    Mirrors :func:`repro.core.run_vertex_coloring` but swaps the public
    tapes, so the same migrated protocol code runs on either substrate.
    """
    num_colors = part.max_degree + 1
    cap = paper_iteration_count(part.n)
    core = resolve_transport(None)
    transcript = core.new_transcript()
    pub_alice, pub_bob = tape_cls(seed), tape_cls(seed)
    rng_alice = random.Random((seed << 1) ^ 0xA11CE)
    rng_bob = random.Random((seed << 1) ^ 0xB0B)
    (colors, _), (b_colors, _), _ = core.run(
        lambda ch: vertex_coloring_proto(
            ch, "alice", part.alice_graph, num_colors, pub_alice, rng_alice, cap
        ),
        lambda ch: vertex_coloring_proto(
            ch, "bob", part.bob_graph, num_colors, pub_bob, rng_bob, cap
        ),
        transcript,
    )
    if colors != b_colors:
        raise AssertionError("parties disagree on the coloring")
    return colors


def rand_comparison(
    n: int = 512, d: int = 8, seed: int = 42, repeat: int = 5
) -> list[dict[str, Any]]:
    """Rows of ``{op, tape_s, stream_s, speedup}`` — old tape vs streams.

    Micro rows time the substrate primitives head-to-head (labelled
    splitting, permutation reads, sparse masks, batch coins); the
    protocol row runs the full Theorem 1 vertex path on the standard
    medium workload under both substrates, with the streams' coloring
    checked proper.  The tape rows execute the exact pre-``repro.rand``
    cost model (:class:`repro.rand.LegacyTape`): eager O(m) permutations
    with eager inverses, dense Bernoulli masks, a fresh Mersenne-Twister
    per derived sub-stream.
    """
    part = medium_workload(n, d, seed)
    m = part.max_degree + 1

    def splitting(tape_factory):
        def run():
            root = tape_factory(seed)
            for v in range(2000):
                root.derive("bench", v)
        return run

    def perm_reads(tape_factory):
        def run():
            root = tape_factory(seed)
            for v in range(2000):
                perm = root.derive(v).permutation(m)
                perm.index_of(v % m)
                perm[0]
        return run

    def sparse_masks(tape_factory):
        def run():
            stream = tape_factory(seed).derive("mask")
            for _ in range(100):
                stream.sample_indices(4096, 0.01)
        return run

    def batch_coins(tape_factory):
        def run():
            stream = tape_factory(seed).derive("coins")
            for _ in range(100):
                stream.coins(n, 0.5)
        return run

    kernels: list[tuple[str, Callable, int]] = [
        ("derive 2k sub-streams", splitting, 2 * repeat),
        (f"2k lazy perm reads (m={m})", perm_reads, 2 * repeat),
        ("sparse mask m=4096 p=0.01", sparse_masks, 2 * repeat),
        (f"batch coins k={n} p=0.5", batch_coins, 2 * repeat),
    ]

    rows = []
    for name, make, reps in kernels:
        tape_s = _time(make(LegacyTape), reps)
        stream_s = _time(make(lambda s: Stream.from_seed(s)), reps)
        rows.append(
            {
                "op": name,
                "n": n,
                "d": d,
                "seed": seed,
                "tape_s": tape_s,
                "stream_s": stream_s,
                "speedup": tape_s / stream_s if stream_s > 0 else float("inf"),
            }
        )

    colors = _run_vertex_on_tape(part, seed, lambda s: Stream.from_seed(s, "public"))
    proper = is_proper_vertex_coloring(part.graph, colors, num_colors=m)
    tape_s = _time(lambda: _run_vertex_on_tape(part, seed, LegacyTape), repeat)
    stream_s = _time(
        lambda: _run_vertex_on_tape(part, seed, lambda s: Stream.from_seed(s, "public")),
        repeat,
    )
    rows.append(
        {
            "op": "protocol: vertex (thm 1)",
            "n": n,
            "d": d,
            "seed": seed,
            "tape_s": tape_s,
            "stream_s": stream_s,
            "speedup": tape_s / stream_s if stream_s > 0 else float("inf"),
            "stream_coloring_proper": proper,
        }
    )
    return rows


def kernel_comparison(seed: int = 42, repeat: int = 5) -> list[dict[str, Any]]:
    """Rows of ``{op, pure_s, kernel_s, speedup}`` — pure Python vs numpy.

    Times the exact :class:`repro.rand.Stream` entry points on batch sizes
    above the kernel dispatch thresholds, once with the numpy backend live
    and once under :class:`repro.rand.kernels.disabled` — the same escape
    hatch ``REPRO_NO_NUMPY=1`` flips.  Both arms draw bit-for-bit identical
    values (the kernels' parity contract), so the ratio is pure backend
    speed.  Returns ``[]`` when numpy is unavailable; the CLI's
    ``--min-kernel-speedup`` floor guards these rows in CI.
    """
    from ..rand import kernels

    if not kernels.available():
        return []

    cases: list[tuple[str, Callable[[], Any]]] = [
        (
            "kernel: biased coins k=4096 p=0.3",
            lambda: Stream.from_seed(seed, "bench-coins").coins(4096, 0.3),
        ),
        (
            "kernel: ints k=4096 range 1e6",
            lambda: Stream.from_seed(seed, "bench-ints").ints(4096, 0, 1_000_000),
        ),
        (
            "kernel: sample_indices m=65536 p=0.05",
            lambda: Stream.from_seed(seed, "bench-mask").sample_indices(65536, 0.05),
        ),
        (
            "kernel: feistel materialize m=4097",
            lambda: Stream.from_seed(seed, "bench-perm").permutation(4097).materialize(),
        ),
    ]

    rows = []
    for name, fn in cases:
        kernel_s = _time(fn, repeat)
        with kernels.disabled():
            pure_s = _time(fn, repeat)
        rows.append(
            {
                "op": name,
                "seed": seed,
                "pure_s": pure_s,
                "kernel_s": kernel_s,
                "speedup": pure_s / kernel_s if kernel_s > 0 else float("inf"),
            }
        )
    return rows


def profile_hotspots(
    n: int = 512, d: int = 8, seed: int = 42, top: int = 15
) -> list[dict[str, Any]]:
    """cProfile the Theorem 1 vertex path; top-``top`` rows by cumtime.

    Each row is ``{function, file, line, ncalls, tottime_s, cumtime_s}``,
    ready for the table renderers or ``--json`` — the reproducible form
    of "the hot path is X" claims.
    """
    part = medium_workload(n, d, seed)
    run_vertex_coloring(part, seed=seed)  # warm caches outside the profile
    profiler = cProfile.Profile()
    profiler.enable()
    run_vertex_coloring(part, seed=seed)
    profiler.disable()
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    rows = []
    for func in stats.fcn_list[:top]:  # (file, line, name) in sort order
        cc, nc, tottime, cumtime, _callers = stats.stats[func]
        file, line, name = func
        rows.append(
            {
                "function": name,
                "file": file,
                "line": line,
                "ncalls": nc,
                "tottime_s": round(tottime, 6),
                "cumtime_s": round(cumtime, 6),
            }
        )
    return rows


def transport_comparison(
    n: int = 512, d: int = 10, seed: int = 42, repeat: int = 3
) -> list[dict[str, Any]]:
    """Time the end-to-end protocols across all registered transports.

    Defaults to the E4 edge-scaling workload (random d-regular, n=512,
    d=10).  Each row carries per-transport best-of wall times, the
    count-vs-lockstep speedup, and a ``transcripts_equal`` flag pinning
    that every transport produced identical bit/round totals on the run.

    The round-dominated rows (greedy binary search at ``Θ(n log Δ)``
    rounds, FM25 at ``Θ(n)`` rounds) are the comm-dominated paths where
    the count transport's skipped ``Msg``/round-log work is most of the
    wall time; the Theorem 1/2 rows spend most of their time in protocol
    computation shared by every transport, so their speedups are smaller.

    The Theorem 1 row additionally times
    :func:`repro.engine._legacy_thm1.run_vertex_coloring_legacy` — the
    frozen pre-pooling comm machinery on the same workload — and reports
    ``legacy_s``, ``pooled_speedup`` (legacy lockstep vs pooled count) and
    ``legacy_transcript_equal``.  That before/after pair is what the CI
    regression guard (``--compare-transports --min-speedup``) watches,
    mirroring the ``--rand`` guard's tape-vs-stream role.  Because the
    legacy baseline predates (and never gained) the observability gates,
    the same floor doubles as the proof that the NullObserver off path
    costs nothing measurable on the guarded hot loop.

    The Theorem 1 row also times the count path with observability
    *enabled* — a live tracer + metrics registry writing to a scratch
    directory, plus the per-run span/ledger reporting the engine adds —
    and reports ``obs_enabled_s`` and ``obs_overhead`` (fractional
    enabled-vs-disabled slowdown).  ``--max-obs-overhead`` turns that
    into the CI ceiling.
    """
    import tempfile
    from pathlib import Path

    from ..baselines import run_flin_mittal, run_greedy_binary_search
    from ..obs import observing
    from ._legacy_thm1 import run_vertex_coloring_legacy

    part = medium_workload(n, d, seed)

    protocols: list[tuple[str, Callable[[str], Any]]] = [
        (
            "vertex (thm 1)",
            lambda t: run_vertex_coloring(part, seed=seed, transport=t),
        ),
        ("edge (thm 2)", lambda t: run_edge_coloring(part, transport=t)),
        (
            "greedy binary search (comm-dominated)",
            lambda t: run_greedy_binary_search(part, transport=t),
        ),
        (
            "flin-mittal (comm-dominated)",
            lambda t: run_flin_mittal(part, seed, transport=t),
        ),
    ]

    rows = []
    for name, runner in protocols:
        times: dict[str, float] = {}
        summaries: dict[str, dict[str, int]] = {}
        for transport in TRANSPORTS:
            last: list[Any] = []

            def timed(t=transport, sink=last):
                sink[:] = [runner(t)]

            times[transport] = _time(timed, repeat)
            summaries[transport] = last[0].transcript.summary()
        reference = summaries["lockstep"]
        row = {
            "protocol": name,
            "n": n,
            "d": d,
            "seed": seed,
            **{f"{t}_s": times[t] for t in TRANSPORTS},
            "count_speedup": (
                times["lockstep"] / times["count"]
                if times["count"] > 0
                else float("inf")
            ),
            "total_bits": reference["total_bits"],
            "rounds": reference["rounds"],
            "transcripts_equal": all(
                summary == reference for summary in summaries.values()
            ),
        }
        if name == "vertex (thm 1)":
            legacy: list[Any] = []

            def timed_legacy(sink=legacy):
                sink[:] = [run_vertex_coloring_legacy(part, seed=seed)]

            legacy_s = _time(timed_legacy, repeat)
            row["legacy_s"] = legacy_s
            row["pooled_speedup"] = (
                legacy_s / times["count"] if times["count"] > 0 else float("inf")
            )
            row["legacy_transcript_equal"] = (
                legacy[0].transcript.summary() == reference
            )
            # Enabled-observability arm: the identical count run under a
            # live observer, plus exactly the per-run reporting the
            # engine performs (one protocol span + one post-hoc ledger
            # read).  Compared against the disabled-arm time above.
            with tempfile.TemporaryDirectory() as tmp:
                with observing(
                    trace=Path(tmp) / "trace.jsonl",
                    metrics=Path(tmp) / "metrics.json",
                ) as observer:

                    def timed_obs():
                        with observer.span(
                            "protocol", protocol="vertex", transport="count"
                        ):
                            result = runner("count")
                        observer.record_transcript("vertex", result.transcript)

                    obs_enabled_s = _time(timed_obs, repeat)
            row["obs_enabled_s"] = obs_enabled_s
            row["obs_overhead"] = (
                obs_enabled_s / times["count"] - 1.0
                if times["count"] > 0
                else 0.0
            )
        rows.append(row)
    return rows
